//! Distributions: the `Standard` value distribution and uniform range
//! sampling, algorithm-compatible with rand 0.8.

use crate::{Rng, RngCore};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full-range integers, `[0, 1)`
/// floats, fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int_from_u32 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u32() as $t
            }
        }
    )*};
}
macro_rules! standard_int_from_u64 {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int_from_u32!(u8, i8, u16, i16, u32, i32);
standard_int_from_u64!(u64, i64, usize, isize, u128, i128);

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Compare against the most significant bit of a u32 (the least
        // significant bits of weaker RNGs can show simple patterns).
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<f64> for Standard {
    /// 53-bit-precision multiply: `(x >> 11) * 2^-53`, in `[0, 1)`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let scale = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * scale
    }
}

impl Distribution<f32> for Standard {
    /// 24-bit-precision multiply, in `[0, 1)`.
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let scale = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * scale
    }
}

pub mod uniform {
    //! Uniform range sampling with rand 0.8's single-sample algorithms.

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Sample from `[low, high)`.
        fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Range types usable with [`Rng::gen_range`](crate::Rng::gen_range).
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_exclusive(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start() <= self.end(), "cannot sample empty range");
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }

    /// Widening multiply returning `(high, low)` halves.
    macro_rules! wmul {
        ($v:expr, $range:expr, u32) => {{
            let m = ($v as u64).wrapping_mul($range as u64);
            ((m >> 32) as u32, m as u32)
        }};
        ($v:expr, $range:expr, u64) => {{
            let m = ($v as u128).wrapping_mul($range as u128);
            ((m >> 64) as u64, m as u64)
        }};
    }

    /// rand 0.8 `UniformInt::sample_single`/`sample_single_inclusive`:
    /// widening-multiply with a conservative rejection zone computed
    /// from the range's leading zeros.
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:tt) => {
            impl SampleUniform for $ty {
                fn sample_exclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = high.wrapping_sub(low) as $unsigned as $u_large;
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $u_large = rng.gen();
                        let (hi, lo) = wmul!(v, range, $u_large);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high.wrapping_sub(low) as $unsigned as $u_large).wrapping_add(1);
                    if range == 0 {
                        // The whole type's range: any value is in bounds.
                        return rng.gen();
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $u_large = rng.gen();
                        let (hi, lo) = wmul!(v, range, $u_large);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl!(u8, u8, u32);
    uniform_int_impl!(i8, u8, u32);
    uniform_int_impl!(u16, u16, u32);
    uniform_int_impl!(i16, u16, u32);
    uniform_int_impl!(u32, u32, u32);
    uniform_int_impl!(i32, u32, u32);
    uniform_int_impl!(u64, u64, u64);
    uniform_int_impl!(i64, u64, u64);
    uniform_int_impl!(usize, usize, u64);
    uniform_int_impl!(isize, usize, u64);

    /// rand 0.8 `UniformFloat::sample_single`: a value in `[1, 2)` from
    /// 52 mantissa bits, shifted into `value0_1 * scale + low`.
    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bias:expr, $mantissa_bits:expr) => {
            impl SampleUniform for $ty {
                fn sample_exclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let mut scale = high - low;
                    debug_assert!(scale.is_finite(), "range must be finite");
                    loop {
                        let bits: $uty = Standard.sample(rng);
                        let value1_2 = <$ty>::from_bits(
                            (bits >> $bits_to_discard)
                                | (($exponent_bias as $uty) << $mantissa_bits),
                        );
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                        // Rounding pushed the result to `high`: shrink
                        // the scale one ULP and retry (rare).
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    // Floats: treat inclusive as exclusive with the same
                    // algorithm (matching rand's approximation).
                    if low == high {
                        return low;
                    }
                    Self::sample_exclusive(low, high, rng)
                }
            }
        };
    }

    // f64: keep 52 mantissa bits of a u64, exponent bias 1023.
    uniform_float_impl!(f64, u64, 12, 1023u64, 52);
    // f32: keep 23 mantissa bits of a u32, exponent bias 127.
    uniform_float_impl!(f32, u32, 9, 127u32, 23);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn standard_bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_600..5_400).contains(&trues), "{trues}");
    }

    #[test]
    fn uniform_small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match rng.gen_range(5u64..=15) {
                5 => lo_seen = true,
                15 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }
}
