//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the (small) slice of `rand` the workspace actually uses,
//! implemented with the same algorithms as rand 0.8 / rand_chacha 0.3:
//!
//! * [`rngs::StdRng`] — ChaCha with 12 rounds behind a block buffer,
//!   identical output-word ordering to `rand_core`'s `BlockRng`.
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion of
//!   `rand_core` 0.6.
//! * [`Rng::gen_range`] — widening-multiply rejection sampling for
//!   integers, the 52-bit `[1, 2)` mantissa trick for floats.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates from the end with
//!   32-bit index sampling for small bounds.
//!
//! Only determinism and statistical quality are load-bearing for this
//! workspace (every simulation seeds its own streams and tests compare
//! run-to-run), but matching the upstream algorithms keeps behaviour
//! aligned with environments where the real crate is available.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Instantiate from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the PCG32 sequence used by
    /// `rand_core` 0.6 and instantiate from it.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Seed one generator from another.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.fill_bytes(seed.as_mut());
        Ok(Self::from_seed(seed))
    }
}

/// Seeding error (never produced by the deterministic sources here; the
/// type exists for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rand seeding error")
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mixed_word_sizes_stay_deterministic() {
        // next_u32/next_u64 interleavings exercise the block-buffer
        // alignment rules; the sequence must be reproducible.
        let run = || {
            let mut r = StdRng::seed_from_u64(7);
            let mut acc = 0u64;
            for i in 0..100 {
                acc = acc.wrapping_add(if i % 3 == 0 {
                    r.next_u32() as u64
                } else {
                    r.next_u64()
                });
            }
            acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5..=15);
            assert!((5..=15).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut r = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
