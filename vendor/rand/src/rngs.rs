//! Concrete generators. Only [`StdRng`] is provided: a ChaCha cipher
//! with 12 rounds (rand 0.8's choice) behind a 4-block output buffer
//! whose word-serving order replicates `rand_core`'s `BlockRng`.

use crate::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const BUFFER_BLOCKS: usize = 4;
const BUFFER_WORDS: usize = BLOCK_WORDS * BUFFER_BLOCKS;
/// ChaCha constants: "expand 32-byte k".
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The standard deterministic generator: ChaCha12.
#[derive(Clone, Debug)]
pub struct StdRng {
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// 64-bit stream id (words 14–15); always 0 for seeded use.
    stream: u64,
    buf: [u32; BUFFER_WORDS],
    /// Next word to serve; `BUFFER_WORDS` means "buffer exhausted".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn block(&self, counter: u64) -> [u32; BLOCK_WORDS] {
        let mut init = [0u32; BLOCK_WORDS];
        init[..4].copy_from_slice(&CONSTANTS);
        init[4..12].copy_from_slice(&self.key);
        init[12] = counter as u32;
        init[13] = (counter >> 32) as u32;
        init[14] = self.stream as u32;
        init[15] = (self.stream >> 32) as u32;

        let mut state = init;
        // 12 rounds = 6 double rounds (column + diagonal).
        for _ in 0..6 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(init) {
            *s = s.wrapping_add(i);
        }
        state
    }

    /// Refill the buffer with the next 4 blocks and reset the cursor to
    /// `index`.
    fn generate_and_set(&mut self, index: usize) {
        for blk in 0..BUFFER_BLOCKS {
            let words = self.block(self.counter.wrapping_add(blk as u64));
            self.buf[blk * BLOCK_WORDS..(blk + 1) * BLOCK_WORDS].copy_from_slice(&words);
        }
        self.counter = self.counter.wrapping_add(BUFFER_BLOCKS as u64);
        self.index = index;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        StdRng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    /// `BlockRng`-compatible 64-bit reads: two consecutive words
    /// little-endian, with the upstream's split-read behaviour when
    /// exactly one word remains in the buffer.
    fn next_u64(&mut self) -> u64 {
        let read =
            |buf: &[u32; BUFFER_WORDS], i: usize| u64::from(buf[i + 1]) << 32 | u64::from(buf[i]);
        if self.index < BUFFER_WORDS - 1 {
            let i = self.index;
            self.index += 2;
            read(&self.buf, i)
        } else if self.index >= BUFFER_WORDS {
            self.generate_and_set(2);
            read(&self.buf, 0)
        } else {
            let low = u64::from(self.buf[BUFFER_WORDS - 1]);
            self.generate_and_set(1);
            let high = u64::from(self.buf[0]);
            (high << 32) | low
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector, adapted: with the RFC key/nonce and
    /// 20 rounds the first state word is fixed. We cannot check ChaCha12
    /// against the RFC (it only specifies ChaCha20), but the underlying
    /// block structure is shared; this guards the quarter-round and the
    /// state layout by running 10 double rounds instead of 6.
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            let b = 4 * i as u32;
            *k = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        let mut init = [0u32; BLOCK_WORDS];
        init[..4].copy_from_slice(&CONSTANTS);
        init[4..12].copy_from_slice(&key);
        init[12] = 1; // counter
        init[13] = 0x0900_0000;
        init[14] = 0x4a00_0000;
        init[15] = 0;
        let mut state = init;
        for _ in 0..10 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(init) {
            *s = s.wrapping_add(i);
        }
        assert_eq!(state[0], 0xe4e7_f110);
        assert_eq!(state[1], 0x1559_3bd1);
        assert_eq!(state[15], 0x4e3c_50a2);
    }

    #[test]
    fn word_order_is_block_sequential() {
        // Consuming 64 u32s must equal the 4 blocks at counters 0..4.
        let mut rng = StdRng::from_seed([7u8; 32]);
        let reference = StdRng::from_seed([7u8; 32]);
        for blk in 0..4u64 {
            let words = reference.block(blk);
            for w in words {
                assert_eq!(rng.next_u32(), w);
            }
        }
    }

    #[test]
    fn split_u64_read_spans_refills() {
        // Consume 63 u32s, then a u64: it must take the last word of
        // the old buffer as the low half and the first word of the new
        // buffer as the high half.
        let mut rng = StdRng::from_seed([9u8; 32]);
        let probe = StdRng::from_seed([9u8; 32]);
        for _ in 0..BUFFER_WORDS - 1 {
            rng.next_u32();
        }
        let old_last = probe.block(3)[15];
        let new_first = probe.block(4)[0];
        let expect = (u64::from(new_first) << 32) | u64::from(old_last);
        assert_eq!(rng.next_u64(), expect);
    }
}
