//! Slice randomization, rand 0.8-compatible.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle in place (Fisher–Yates from the end, as rand 0.8 does,
    /// including its 32-bit index sampling for small bounds).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

/// rand 0.8 `gen_index`: sample through u32 when the bound fits, for a
/// cheaper (and stream-compatible) draw.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(gen_index(rng, self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(22);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
