//! Offline vendored subset of `serde`.
//!
//! The real serde's generic `Serializer`/`Deserializer` data model is
//! far larger than this workspace needs: every use here is a derive
//! plus a `serde_json` round-trip. This vendored stand-in therefore
//! models serialization directly as conversion to and from a JSON-shaped
//! [`Value`] tree:
//!
//! * [`Serialize::to_value`] / [`Deserialize::from_value`] replace the
//!   visitor machinery (the signatures differ from real serde, but no
//!   code in this workspace implements or calls the traits manually —
//!   everything goes through `derive` and `serde_json`).
//! * The **external data model matches serde**: structs are objects,
//!   newtype structs serialize as their inner value, enums are
//!   externally tagged (`"Variant"` / `{"Variant": …}`), `Option` is
//!   `null`/value, `Result` is `{"Ok": …}`/`{"Err": …}`, and non-finite
//!   floats serialize as `null` (as `serde_json` emits).
//!
//! Derives are provided by the companion `serde_derive` crate via the
//! `derive` feature, exactly like the real crate layout.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the wire format of this serde subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Finite float.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Deserialization error: a message plus optional context trail.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Wrap with field/variant context.
    pub fn context(self, what: &str) -> Self {
        DeError {
            msg: format!("{what}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialize into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialize from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in an object (derive-internal helper).
pub fn __field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::I64(*self as i64) } else { Value::U64(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::new(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                // serde_json serializes non-finite floats as null.
                if x.is_finite() { Value::F64(x) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::new(format!(
                        "expected {} got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::new(format!("expected char got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected {N} elements, got {n}")))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Object(vec![("Ok".to_string(), x.to_value())]),
            Err(e) => Value::Object(vec![("Err".to_string(), e.to_value())]),
        }
    }
}
impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_object() {
            Some([(tag, inner)]) if tag == "Ok" => T::from_value(inner).map(Ok),
            Some([(tag, inner)]) if tag == "Err" => E::from_value(inner).map(Err),
            _ => Err(DeError::new(format!("expected Ok/Err object got {v:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+),)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::new(format!("expected array got {v:?}")))?;
                if items.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected {LEN}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
}

impl<K: Serialize + ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_result_follow_serde_shape() {
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
        let ok: Result<u32, String> = Ok(7);
        assert_eq!(
            ok.to_value(),
            Value::Object(vec![("Ok".into(), Value::U64(7))])
        );
        let back: Result<u32, String> = Deserialize::from_value(&ok.to_value()).unwrap();
        assert_eq!(back, Ok(7));
    }

    #[test]
    fn numbers_round_trip() {
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [-5i64, 0, i64::MAX] {
            assert_eq!(i64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [0.5f64, -1e300, 0.1 + 0.2] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        }
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn vectors_and_tuples_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let back: Vec<(u32, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }
}
