//! Derive macros for the vendored serde subset.
//!
//! Implemented without `syn`/`quote` (neither is available offline):
//! the item is walked token-by-token to extract the name, fields, and
//! variants, and the impl is generated as a string then re-parsed into
//! a `TokenStream`. Supported shapes — non-generic structs (named,
//! tuple/newtype, unit) and non-generic enums (unit, newtype, tuple,
//! struct variants), externally tagged like real serde. Field/variant
//! attributes (`#[serde(...)]` etc.) are not supported and generics
//! are rejected with a clear panic; nothing in this workspace uses
//! either.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (Value-model subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Direction::Serialize)
        .parse()
        .expect("serde_derive generated invalid Rust for Serialize")
}

/// Derive `serde::Deserialize` (Value-model subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Direction::Deserialize)
        .parse()
        .expect("serde_derive generated invalid Rust for Deserialize")
}

enum Direction {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields (1 = newtype).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    /// Tuple variant with this many fields (1 = newtype).
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                shape: Shape::UnitStruct,
            },
            other => panic!("serde_derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: expected `{{` after `enum {name}`, found {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    }
}

/// Skip any `#[...]` (and `#![...]`) attributes at the cursor.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        }
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` at the cursor.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Split a field/variant list at top-level commas. Parens, brackets and
/// braces arrive as atomic `Group`s, so only `<`/`>` depth needs tracking
/// (for types like `Result<FlowFeatures, FeatureError>`).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Field names of a named-fields body (`{ a: T, pub b: U }`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            skip_visibility(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attributes(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            let fields = match chunk.get(i) {
                None => VariantFields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                other => panic!(
                    "serde_derive: unsupported tokens after variant `{name}` \
                     (explicit discriminants are not supported): {other:?}"
                ),
            };
            Variant { name, fields }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn generate(item: &Item, dir: Direction) -> String {
    match dir {
        Direction::Serialize => gen_serialize(item),
        Direction::Deserialize => gen_deserialize(item),
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))",
                        f
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => {
            format!("{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),")
        }
        VariantFields::Tuple(1) => format!(
            "{name}::{vname}(__f0) => ::serde::Value::Object(vec![\
             ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                 ({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                 ({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__field(__obj, {f:?})?)\
                         .map_err(|e| e.context(\"{name}.{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"expected object for struct {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => format!(
            "::serde::Deserialize::from_value(__v)\
             .map({name})\
             .map_err(|e| e.context(\"{name}\"))"
        ),
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&__items[{i}])\
                         .map_err(|e| e.context(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for tuple struct {name}\"))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::DeError::new(format!(\
                 \"expected {n} elements for {name}, got {{}}\", __items.len()))); }}\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!(
            "match __v {{ ::serde::Value::Null => Ok({name}), other => \
             Err(::serde::DeError::new(format!(\"expected null for unit struct {name}, \
             got {{other:?}}\"))) }}"
        ),
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| de_tagged_arm(name, v))
        .collect();
    format!(
        "match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {}\n\
         __other => Err(::serde::DeError::new(format!(\
         \"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
         }},\n\
         ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __inner) = &__entries[0];\n\
         let _ = __inner;\n\
         match __tag.as_str() {{\n\
         {}\n\
         __other => Err(::serde::DeError::new(format!(\
         \"unknown variant `{{__other}}` for enum {name}\"))),\n\
         }}\n\
         }},\n\
         __other => Err(::serde::DeError::new(format!(\
         \"expected variant of enum {name}, got {{__other:?}}\"))),\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n"),
    )
}

fn de_tagged_arm(name: &str, v: &Variant) -> Option<String> {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => None,
        VariantFields::Tuple(1) => Some(format!(
            "{vname:?} => ::serde::Deserialize::from_value(__inner)\
             .map({name}::{vname})\
             .map_err(|e| e.context(\"{name}::{vname}\")),"
        )),
        VariantFields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&__items[{i}])\
                         .map_err(|e| e.context(\"{name}::{vname}.{i}\"))?"
                    )
                })
                .collect();
            Some(format!(
                "{vname:?} => {{\n\
                 let __items = __inner.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for variant {name}::{vname}\"))?;\n\
                 if __items.len() != {n} {{ return Err(::serde::DeError::new(format!(\
                 \"expected {n} elements for {name}::{vname}, got {{}}\", __items.len()))); }}\n\
                 Ok({name}::{vname}({}))\n\
                 }},",
                inits.join(", ")
            ))
        }
        VariantFields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__field(__obj, {f:?})?)\
                         .map_err(|e| e.context(\"{name}::{vname}.{f}\"))?"
                    )
                })
                .collect();
            Some(format!(
                "{vname:?} => {{\n\
                 let __obj = __inner.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"expected object for variant {name}::{vname}\"))?;\n\
                 Ok({name}::{vname} {{ {} }})\n\
                 }},",
                inits.join(", ")
            ))
        }
    }
}
