//! Offline vendored subset of `serde_json`.
//!
//! Provides exactly the surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] and [`Error`] — over the vendored
//! serde's [`Value`] data model. Output conventions match real
//! serde_json: compact form has no whitespace, pretty form indents with
//! two spaces, floats print via Rust's shortest round-trip formatting,
//! and non-finite floats have already become `null` at serialization
//! time.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    // serde_json (via ryu) emits the shortest round-trip decimal, which
    // Rust's `{:?}` also produces; both print integral values as "1.0".
    use std::fmt::Write;
    let _ = write!(out, "{x:?}");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {} (expected `{word}`)",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // "-0" parses as integer zero, like serde_json.
            if stripped.chars().all(|c| c == '0') {
                Ok(Value::U64(0))
            } else {
                text.parse::<i64>()
                    .map(Value::I64)
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))
            }
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = vec![(1u32, 0.5f64), (2, 1.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,1.0]]");
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_indents_with_two_spaces() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2]];
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "[\n  [\n    1,\n    2\n  ]\n]"
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str(r#""a\n\t\"A😀""#).unwrap();
        assert_eq!(s, "a\n\t\"A\u{1F600}");
    }

    #[test]
    fn parses_numbers() {
        let x: f64 = from_str("-1.5e3").unwrap();
        assert_eq!(x, -1500.0);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("[1").is_err());
    }
}
